// Package experiments maps every table and figure of the paper's evaluation
// to a runnable regenerator. Each experiment prints the same rows/series the
// paper reports (as aligned tables, CSV series and ASCII plots) at a chosen
// preset: Smoke shrinks grids, epochs and seed counts to laptop scale while
// preserving every architectural relationship; Paper restores the published
// scale (64³ collocation grid, 25 000 epochs, 5 seeds).
package experiments

import (
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/maxwell"
	"repro/internal/qsim"
)

// Preset selects the experiment scale.
type Preset int

const (
	Smoke Preset = iota
	Paper
)

// Options configures one experiment invocation.
type Options struct {
	Preset Preset
	Seeds  int // replicate count (paper: 5)
	Epochs int // training epochs override (0 = preset default)
	// Engine selects the circuit-execution engine for the batched-simulator
	// rows of Table 2 and for every trained quantum model (zero value: the
	// fused compiled engine).
	Engine qsim.EngineKind
	Out    io.Writer
	// FigDir, when set, receives PGM/CSV artifacts for field figures.
	FigDir string
	// Ansatze / Scalings restrict the Figs. 6-9 sweep (nil = the paper's
	// full grid of 6 ansätze × 5 scalings).
	Ansatze  []qsim.AnsatzKind
	Scalings []qsim.ScalingKind
}

func (o Options) seeds() int {
	if o.Seeds > 0 {
		return o.Seeds
	}
	if o.Preset == Paper {
		return 5
	}
	return 2
}

func (o Options) epochs() int {
	if o.Epochs > 0 {
		return o.Epochs
	}
	if o.Preset == Paper {
		return 25000
	}
	return 200
}

// model returns the architecture config at the preset scale.
func (o Options) model(arch core.Arch, a qsim.AnsatzKind, s qsim.ScalingKind, seed int64) core.ModelConfig {
	var m core.ModelConfig
	if o.Preset == Paper {
		m = core.PaperModel(arch, a, s)
	} else {
		m = core.SmokeModel(arch, a, s)
	}
	m.Seed = seed
	m.Engine = o.Engine
	return m
}

// train returns the training config at the preset scale.
func (o Options) train(loss maxwell.Config) core.TrainConfig {
	if o.Preset == Paper {
		t := core.PaperTrain(loss)
		t.Epochs = o.epochs()
		return t
	}
	return core.SmokeTrain(o.epochs(), loss)
}

// problem returns the benchmark problem at preset scale: the Paper preset
// uses the paper's narrow pulse; Smoke widens it 2× so its spectral content
// is resolvable on smoke collocation grids (see maxwell.NewSmokeProblem).
func (o Options) problem(c maxwell.Case) maxwell.Problem {
	if o.Preset == Paper {
		return maxwell.NewProblem(c)
	}
	return maxwell.NewSmokeProblem(c)
}

// reference builds the evaluation probe set for a problem at preset scale.
func (o Options) reference(p maxwell.Problem) *core.Reference {
	if o.Preset == Paper {
		// Paper: 512×512 × 1500 steps; we probe a 64² grid at 16 times,
		// which already dominates run time at paper scale.
		return core.NewReference(p, 64, linspace(0, p.TMax, 16), 256)
	}
	return core.NewReference(p, 12, linspace(0, p.TMax, 5), 64)
}

// Runner is one registered experiment.
type Runner struct {
	Name string
	Doc  string
	Run  func(Options) error
}

// Registry lists every experiment in paper order.
var Registry = []Runner{
	{"table1", "Table 1: trainable-parameter counts per architecture", Table1},
	{"table2", "Table 2: simulator speed and memory comparison (TorQ vs naive baselines)", Table2},
	{"fig3", "Fig 3: input-angle scalings — transfer curves and measurement distributions", Fig3},
	{"fig4", "Fig 4: the six ansatz circuit schematics", Fig4},
	{"fig5", "Fig 5: initial condition and final-time Ez contours for both cases", Fig5},
	{"fig6", "Fig 6: vacuum case — best-combo loss curves and full ablation L2 errors", FigVacuumAblation},
	{"fig7", "Fig 7: vacuum case — average L2 grouped by scale and by ansatz", FigVacuumAggregates},
	{"fig8", "Fig 8: dielectric case — best-combo loss curves and full ablation L2 errors", FigDielectricAblation},
	{"fig9", "Fig 9: dielectric case — average L2 grouped by scale and by ansatz", FigDielectricAggregates},
	{"fig10", "Fig 10: black-hole anatomy — L2/loss/grad-norm/grad-var/Meyer-Wallach vs epoch, ±energy", Fig10},
	{"fig11", "Fig 11: collapsed-run field snapshots (no energy conservation loss)", Fig11},
	{"fig12", "Fig 12: second-to-last-layer output distributions at initialization", Fig12},
	{"fig14", "Fig 13/14 (appendix A): asymmetric pulse case", Fig14},
	{"sec51", "§5.1: intuitive vs region-weighted dielectric physics loss", Sec51},
	{"ibh", "§5 eqs. 33-35: black-hole index I_BH across configurations", IBHTable},
	{"bp", "§6.2(e) extension: barren-plateau gradient-variance curves vs depth and qubits", BarrenPlateau},
	{"trig", "§6.2(b) extension: QPINN vs fixed trigonometric-basis classical control", TrigControl},
	{"reup", "§6.2(c) extension: data re-uploading cycles vs single embedding", Reupload},
}

// Lookup finds an experiment by name.
func Lookup(name string) (Runner, bool) {
	for _, r := range Registry {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}

func linspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// runStats summarizes replicate runs of one configuration.
type runStats struct {
	L2s       []float64
	IBHs      []float64
	Curves    [][]float64 // total loss per epoch per seed
	Collapsed int
}

// runConfig trains `seeds` replicates of one configuration and collects L2,
// I_BH and the loss curves.
func runConfig(o Options, p maxwell.Problem, arch core.Arch, ansatz qsim.AnsatzKind,
	scaling qsim.ScalingKind, loss maxwell.Config, ref *core.Reference) runStats {
	var st runStats
	for seed := 0; seed < o.seeds(); seed++ {
		mcfg := o.model(arch, ansatz, scaling, int64(1000+seed*37))
		tcfg := o.train(loss)
		res := core.Train(p, mcfg, tcfg, ref)
		st.L2s = append(st.L2s, res.FinalL2)
		st.IBHs = append(st.IBHs, res.FinalIBH)
		curve := make([]float64, len(res.History))
		for i, h := range res.History {
			curve[i] = h.Total
		}
		st.Curves = append(st.Curves, curve)
		if res.Collapsed {
			st.Collapsed++
		}
	}
	return st
}

// meanCurve averages per-seed loss curves.
func meanCurve(curves [][]float64) []float64 {
	if len(curves) == 0 {
		return nil
	}
	out := make([]float64, len(curves[0]))
	for _, c := range curves {
		for i := range out {
			out[i] += c[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(curves))
	}
	return out
}

// sortedKeys returns map keys in deterministic order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
