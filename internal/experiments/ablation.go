package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/maxwell"
	"repro/internal/qsim"
	"repro/internal/report"
)

// ablationResult stores the sweep outcome for one case.
type ablationResult struct {
	// key: ansatz → scaling → energy(0/1)
	quantum map[qsim.AnsatzKind]map[qsim.ScalingKind][2]runStats
	classic map[core.Arch][2]runStats
	// best-combination curves for panel (a)
	curveSeries       map[string][]float64
	classicalBaseline float64 // mean L2 of regular classical without energy
}

// ansatze returns the sweep's ansatz list (Options may restrict it).
func (o Options) ansatze() []qsim.AnsatzKind {
	if len(o.Ansatze) > 0 {
		return o.Ansatze
	}
	return qsim.AllAnsatze
}

// scalings returns the sweep's scaling list.
func (o Options) scalings() []qsim.ScalingKind {
	if len(o.Scalings) > 0 {
		return o.Scalings
	}
	return qsim.AllScalings
}

// runAblation executes the Figs. 6–9 sweep for one case: every
// ansatz × scaling × {with, without energy loss} plus the three classical
// depths ± energy loss.
func runAblation(o Options, c maxwell.Case) ablationResult {
	p := o.problem(c)
	ref := o.reference(p)
	useSym := c != maxwell.AsymmetricCase

	res := ablationResult{
		quantum:     map[qsim.AnsatzKind]map[qsim.ScalingKind][2]runStats{},
		classic:     map[core.Arch][2]runStats{},
		curveSeries: map[string][]float64{},
	}

	for _, arch := range []core.Arch{core.ClassicalRegular, core.ClassicalReduced, core.ClassicalExtra} {
		var pair [2]runStats
		for ei, energy := range []bool{false, true} {
			pair[ei] = runConfig(o, p, arch, qsim.BasicEntangling, qsim.ScaleNone,
				maxwell.PaperConfig(energy, useSym), ref)
		}
		res.classic[arch] = pair
		name := arch.String()
		res.curveSeries[name] = meanCurve(pair[0].Curves)
		if arch == core.ClassicalRegular {
			m, _ := report.MeanStd(pair[0].L2s)
			res.classicalBaseline = m
		}
	}

	for _, a := range o.ansatze() {
		res.quantum[a] = map[qsim.ScalingKind][2]runStats{}
		for _, s := range o.scalings() {
			var pair [2]runStats
			for ei, energy := range []bool{false, true} {
				pair[ei] = runConfig(o, p, core.QPINN, a, s,
					maxwell.PaperConfig(energy, useSym), ref)
			}
			res.quantum[a][s] = pair
		}
	}
	return res
}

// renderAblation prints panel (b): the full L2 table with the classical
// baseline marked, stars for configurations beating it, and collapse counts.
func renderAblation(o Options, caseName string, res ablationResult) {
	t := report.NewTable(
		fmt.Sprintf("Fig (%s) panel b: L2 errors, all combinations (mean ± std over %d seeds; ✗ = collapsed runs)", caseName, o.seeds()),
		"Configuration", "Scaling", "L2 (no energy)", "±", "L2 (energy)", "±", "Collapsed(noE/E)", "vs classical")
	for _, arch := range []core.Arch{core.ClassicalRegular, core.ClassicalReduced, core.ClassicalExtra} {
		pair := res.classic[arch]
		m0, s0 := report.MeanStd(pair[0].L2s)
		m1, s1 := report.MeanStd(pair[1].L2s)
		t.Row(arch.String(), "-", m0, s0, m1, s1,
			fmt.Sprintf("%d/%d", pair[0].Collapsed, pair[1].Collapsed), "")
	}
	for _, a := range o.ansatze() {
		for _, s := range o.scalings() {
			pair := res.quantum[a][s]
			m0, s0 := report.MeanStd(pair[0].L2s)
			m1, s1 := report.MeanStd(pair[1].L2s)
			best := m0
			if m1 < best {
				best = m1
			}
			star := ""
			if best < res.classicalBaseline {
				star = "★"
			}
			t.Row(a.String(), s.String(), m0, s0, m1, s1,
				fmt.Sprintf("%d/%d", pair[0].Collapsed, pair[1].Collapsed), star)
		}
	}
	t.Render(o.Out)
	fmt.Fprintf(o.Out, "\nClassical regular (no energy) baseline: %.6g\n", res.classicalBaseline)

	fmt.Fprintln(o.Out)
	report.LinePlot(o.Out, fmt.Sprintf("Fig (%s) panel a: mean training loss (log scale)", caseName),
		72, 18, true, res.curveSeries)
}

// aggregate computes the Fig. 7/9 groupings: average L2 per scaling (with
// scale_pi omitted in the vacuum case, as in the paper) and per ansatz.
func aggregate(o Options, res ablationResult, omitPi bool) (byScale, byAnsatz map[string][]float64) {
	byScale = map[string][]float64{}
	byAnsatz = map[string][]float64{}
	for _, a := range o.ansatze() {
		for _, s := range o.scalings() {
			pair := res.quantum[a][s]
			all := append(append([]float64{}, pair[0].L2s...), pair[1].L2s...)
			byScale[s.String()] = append(byScale[s.String()], all...)
			if !(omitPi && s == qsim.ScalePi) {
				byAnsatz[a.String()] = append(byAnsatz[a.String()], all...)
			}
		}
	}
	return
}

func renderAggregates(o Options, caseName string, res ablationResult, omitPi bool) {
	byScale, byAnsatz := aggregate(o, res, omitPi)
	ts := report.NewTable(fmt.Sprintf("Fig (%s): average L2 by input scale", caseName),
		"Scale", "Mean L2", "Std")
	for _, k := range sortedKeys(byScale) {
		m, s := report.MeanStd(byScale[k])
		ts.Row(k, m, s)
	}
	ts.Render(o.Out)
	fmt.Fprintln(o.Out)
	ta := report.NewTable(fmt.Sprintf("Fig (%s): average L2 by ansatz%s", caseName,
		map[bool]string{true: " (scale_pi omitted, as in the paper)", false: ""}[omitPi]),
		"Ansatz", "Mean L2", "Std")
	for _, k := range sortedKeys(byAnsatz) {
		m, s := report.MeanStd(byAnsatz[k])
		ta.Row(k, m, s)
	}
	ta.Render(o.Out)
	fmt.Fprintf(o.Out, "\nClassical average (regular, no energy): %.6g\n", res.classicalBaseline)
}

// FigVacuumAblation regenerates Fig. 6.
func FigVacuumAblation(o Options) error {
	res := runAblation(o, maxwell.VacuumCase)
	renderAblation(o, "6 vacuum", res)
	fmt.Fprintln(o.Out)
	renderAggregates(o, "7 vacuum", res, true)
	fmt.Fprintln(o.Out, "\nPaper shape: with the energy term QPINNs avoid BH collapse and the best")
	fmt.Fprintln(o.Out, "combos (Strongly/Basic Entangling + asin/acos) beat every classical depth;")
	fmt.Fprintln(o.Out, "scale_pi is the outlier; without the energy term QPINN runs collapse (✗).")
	return nil
}

// FigVacuumAggregates regenerates Fig. 7.
func FigVacuumAggregates(o Options) error {
	res := runAblation(o, maxwell.VacuumCase)
	renderAggregates(o, "7 vacuum", res, true)
	return nil
}

// FigDielectricAblation regenerates Fig. 8.
func FigDielectricAblation(o Options) error {
	res := runAblation(o, maxwell.DielectricCase)
	renderAblation(o, "8 dielectric", res)
	fmt.Fprintln(o.Out)
	renderAggregates(o, "9 dielectric", res, false)
	fmt.Fprintln(o.Out, "\nPaper shape: nearly all runs converge (no BH); the energy term *hurts*")
	fmt.Fprintln(o.Out, "here (stiff 1/ε-vs-ε gradient imbalance); scale spread is much smaller.")
	return nil
}

// FigDielectricAggregates regenerates Fig. 9.
func FigDielectricAggregates(o Options) error {
	res := runAblation(o, maxwell.DielectricCase)
	renderAggregates(o, "9 dielectric", res, false)
	return nil
}
