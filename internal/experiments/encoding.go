package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/qsim"
	"repro/internal/report"
)

// Fig3 reproduces the input-scaling study: ⟨Z⟩ transfer curves for linear
// and tanh-bounded inputs under the five encodings (panels a–b), the induced
// angle distributions (panel c) and the Pauli-Z outcome distributions
// (panel d) for uniform inputs.
func Fig3(o Options) error {
	circ := qsim.NoEntanglement.Build(1, 0) // bare RX embedding + Z readout
	sweep := linspace(-1, 1, 41)

	curves := report.NewTable("Fig 3a/3b: ⟨Z⟩ after RX(scale(a)) — transfer curves",
		"input a", "tanh(a)", "none", "pi", "bias", "asin", "acos")
	for _, a := range sweep {
		th := math.Tanh(a)
		row := []interface{}{a, th}
		for _, s := range []qsim.ScalingKind{qsim.ScaleNone, qsim.ScalePi, qsim.ScaleBias, qsim.ScaleAsin, qsim.ScaleAcos} {
			z := qsim.EvalZ(circ, []float64{s.Apply(th)}, nil, 1)[0]
			row = append(row, z)
		}
		curves.Row(row...)
	}
	curves.Render(o.Out)
	fmt.Fprintln(o.Out, "\nClosed-form anchors (paper Fig 3a): scale_acos ⇒ ⟨Z⟩ = a (identity);")
	fmt.Fprintln(o.Out, "scale_asin ⇒ ⟨Z⟩ = −a (sign flip); both verified in unit tests.")

	// Panels c/d: distributions for a ~ Unif[−1, 1].
	rng := rand.New(rand.NewSource(33))
	n := 20000
	for _, s := range qsim.AllScalings {
		angles := make([]float64, n)
		zs := make([]float64, n)
		for i := 0; i < n; i++ {
			a := rng.Float64()*2 - 1
			angles[i] = s.Apply(a)
			zs[i] = math.Cos(angles[i]) // exact ⟨Z⟩ after RX(θ)
		}
		fmt.Fprintln(o.Out)
		report.Histogram(o.Out, fmt.Sprintf("Fig 3c: angle distribution under %v", s), angles, 24, 40)
		fmt.Fprintln(o.Out)
		report.Histogram(o.Out, fmt.Sprintf("Fig 3d: Pauli-Z distribution under %v", s), zs, 24, 40)
	}
	fmt.Fprintln(o.Out, "\nPaper shape: scale_none concentrates ⟨Z⟩ near 1; scale_pi/bias pile up at")
	fmt.Fprintln(o.Out, "the ±1 edges; scale_asin/acos give the uniform ⟨Z⟩ density.")
	return nil
}

// Fig4 renders the six ansatz schematics.
func Fig4(o Options) error {
	nq, layers := 4, 2
	if o.Preset == Paper {
		nq, layers = 7, 4
	}
	for _, a := range []qsim.AnsatzKind{
		qsim.BasicEntangling, qsim.StronglyEntangling, qsim.CrossMesh,
		qsim.CrossMesh2Rot, qsim.CrossMeshCNOT, qsim.NoEntanglement,
	} {
		qsim.Draw(o.Out, a.Build(nq, layers))
		fmt.Fprintln(o.Out)
	}
	return nil
}
