package diag

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIBH(t *testing.T) {
	// Conserved energy ⇒ I_BH = 0.
	if got := IBH([]float64{1, 1, 1, 1}, 1); math.Abs(got) > 1e-15 {
		t.Fatalf("conserved energy I_BH = %v", got)
	}
	// Full fade after the initial slice ⇒ I_BH = 1.
	if got := IBH([]float64{1, 0, 0, 0}, 1); math.Abs(got-1) > 1e-15 {
		t.Fatalf("fade I_BH = %v", got)
	}
	// 40% dip ⇒ I_BH = 0.4.
	if got := IBH([]float64{1, 0.9, 0.6, 0.8}, 1); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("dip I_BH = %v", got)
	}
	// The skip excludes early slices from the minimum.
	if got := IBH([]float64{1, 0.1, 0.95, 0.95}, 2); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("skip I_BH = %v", got)
	}
	// Degenerate inputs → NaN.
	if got := IBH(nil, 1); !math.IsNaN(got) {
		t.Fatalf("nil energy I_BH = %v", got)
	}
	if got := IBH([]float64{0, 1}, 1); !math.IsNaN(got) {
		t.Fatalf("zero initial energy I_BH = %v", got)
	}
}

// Property: I_BH ≤ 1 for nonnegative energies, and monotone in the dip.
func TestIBHBoundsProperty(t *testing.T) {
	f := func(raw [6]float64) bool {
		e := make([]float64, 6)
		e[0] = 1
		for i := 1; i < 6; i++ {
			e[i] = math.Abs(math.Mod(raw[i], 3))
			if math.IsNaN(e[i]) {
				e[i] = 0.5
			}
		}
		v := IBH(e, 1)
		return v <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCollapseCriteria(t *testing.T) {
	if Collapsed(0.5) || !Collapsed(0.95) {
		t.Fatal("collapse threshold wrong")
	}
	// BH phenomenon: >95% of seeds must collapse.
	all := []float64{0.99, 0.97, 0.98, 0.99, 0.95000001}
	if !BHOccurred(all) {
		t.Fatal("all-collapsed population must be a BH phenomenon")
	}
	mixed := []float64{0.99, 0.97, 0.5, 0.99, 0.99}
	if BHOccurred(mixed) {
		t.Fatal("4/5 collapsed is not >95%")
	}
	if BHOccurred(nil) {
		t.Fatal("empty population")
	}
}

func TestCostModel(t *testing.T) {
	// No derivatives: cost 1.
	if got := CostModel(nil); got != 1 {
		t.Fatalf("base cost %v", got)
	}
	// One first-order term: 1 + 2·1 = 3.
	if got := CostModel([]DerivTerm{{1, 1}}); got != 3 {
		t.Fatalf("first-order cost %v", got)
	}
	// Second-order term: 1 + 4·2 = 9.
	if got := CostModel([]DerivTerm{{2, 2}}); got != 9 {
		t.Fatalf("second-order cost %v", got)
	}
	// The TEz loss: nine first-order dependences → 1 + 2·9 = 19.
	if got := MaxwellLossCost(); got != 19 {
		t.Fatalf("Maxwell loss cost %v", got)
	}
}
