// Package diag implements the paper's training diagnostics: the "black
// hole" collapse index I_BH (eqs. 33–35), the operational collapse
// criterion, and the per-point derivative cost model of §2.2.
package diag

import "math"

// IBH computes the black-hole index of eq. 35 from a total-energy series
// U(t_s): 1 − min_{t ≥ δ} U(t)/U(0). Values near 1 mean the fields have
// faded to the trivial solution everywhere after the initial slice. The
// first sample is taken as t = 0; slices before delta (in index space) are
// excluded from the minimum.
func IBH(energy []float64, skip int) float64 {
	if len(energy) == 0 || energy[0] <= 0 {
		return math.NaN()
	}
	if skip < 1 {
		skip = 1
	}
	minRatio := math.Inf(1)
	for _, u := range energy[skip:] {
		if r := u / energy[0]; r < minRatio {
			minRatio = r
		}
	}
	if math.IsInf(minRatio, 1) {
		return math.NaN()
	}
	return 1 - minRatio
}

// Collapsed applies the operational criterion of §5: the run collapsed to
// the trivial solution when I_BH exceeds the threshold (the paper requires
// Ũ ≪ 1; we use 0.9 as "≪").
func Collapsed(ibh float64) bool { return ibh > 0.9 }

// BHOccurred applies the population-level definition: a BH phenomenon is
// declared when more than 95% of seeds collapse.
func BHOccurred(ibhPerSeed []float64) bool {
	if len(ibhPerSeed) == 0 {
		return false
	}
	collapsed := 0
	for _, v := range ibhPerSeed {
		if Collapsed(v) {
			collapsed++
		}
	}
	return float64(collapsed) > 0.95*float64(len(ibhPerSeed))
}

// CostModel evaluates the paper's per-point loss-evaluation cost estimate
// (the unnumbered C_loss equation in §2.1):
//
//	C_loss ≈ 1 + Σ_d 2^order(d) · occurrences(d)
//
// over the derivative terms d needed by the loss.
type DerivTerm struct {
	Order       int
	Occurrences int
}

// CostModel sums the estimate for a set of derivative terms.
func CostModel(terms []DerivTerm) float64 {
	c := 1.0
	for _, t := range terms {
		c += math.Pow(2, float64(t.Order)) * float64(t.Occurrences)
	}
	return c
}

// MaxwellLossCost returns the cost-model estimate for the TEz physics loss:
// nine first-order derivative dependences (three per residual equation).
func MaxwellLossCost() float64 {
	return CostModel([]DerivTerm{{Order: 1, Occurrences: 9}})
}
