// Package fft provides the radix-2 complex FFT underlying the exact
// spectral reference solution of the vacuum Maxwell case. Stdlib-only: the
// transform is an iterative in-place Cooley–Tukey with precomputed twiddles.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// Plan caches bit-reversal and twiddle tables for a fixed power-of-two size.
type Plan struct {
	n       int
	rev     []int
	twiddle []complex128 // forward twiddles e^{-2πik/n}, k < n/2
}

// NewPlan creates a plan for size n (must be a power of two ≥ 1).
func NewPlan(n int) *Plan {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: size %d is not a power of two", n))
	}
	p := &Plan{n: n}
	logN := bits.TrailingZeros(uint(n))
	p.rev = make([]int, n)
	for i := 0; i < n; i++ {
		p.rev[i] = int(bits.Reverse(uint(i)) >> (bits.UintSize - logN))
	}
	p.twiddle = make([]complex128, n/2)
	for k := range p.twiddle {
		ang := -2 * math.Pi * float64(k) / float64(n)
		p.twiddle[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	return p
}

// Forward transforms a in place (DFT with e^{-2πi jk/n} kernel).
func (p *Plan) Forward(a []complex128) { p.transform(a, false) }

// Inverse transforms a in place, including the 1/n normalization.
func (p *Plan) Inverse(a []complex128) {
	p.transform(a, true)
	inv := complex(1/float64(p.n), 0)
	for i := range a {
		a[i] *= inv
	}
}

func (p *Plan) transform(a []complex128, inverse bool) {
	n := p.n
	if len(a) != n {
		panic(fmt.Sprintf("fft: input length %d ≠ plan size %d", len(a), n))
	}
	for i, j := range p.rev {
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := p.twiddle[k*step]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
			}
		}
	}
}

// Forward2D transforms an n×n grid (row-major) in place: rows then columns.
func Forward2D(a []complex128, n int) { transform2D(a, n, false) }

// Inverse2D inverts Forward2D, including normalization.
func Inverse2D(a []complex128, n int) { transform2D(a, n, true) }

func transform2D(a []complex128, n int, inverse bool) {
	p := NewPlan(n)
	// Rows.
	for r := 0; r < n; r++ {
		row := a[r*n : (r+1)*n]
		if inverse {
			p.Inverse(row)
		} else {
			p.Forward(row)
		}
	}
	// Columns via strided copy.
	col := make([]complex128, n)
	for c := 0; c < n; c++ {
		for r := 0; r < n; r++ {
			col[r] = a[r*n+c]
		}
		if inverse {
			p.Inverse(col)
		} else {
			p.Forward(col)
		}
		for r := 0; r < n; r++ {
			a[r*n+c] = col[r]
		}
	}
}

// FreqIndex maps a DFT bin to its signed frequency index (−n/2 < k ≤ n/2).
func FreqIndex(bin, n int) int {
	if bin <= n/2 {
		return bin
	}
	return bin - n
}
