package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference.
func naiveDFT(a []complex128) []complex128 {
	n := len(a)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j*k) / float64(n)
			out[k] += a[j] * cmplx.Exp(complex(0, ang))
		}
	}
	return out
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, n := range []int{1, 2, 4, 8, 32, 128} {
		a := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(a)
		got := append([]complex128(nil), a...)
		NewPlan(n).Forward(got)
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-9*(1+cmplx.Abs(want[i])) {
				t.Fatalf("n=%d bin %d: %v vs %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(7))
		a := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		orig := append([]complex128(nil), a...)
		p := NewPlan(n)
		p.Forward(a)
		p.Inverse(a)
		for i := range a {
			if cmplx.Abs(a[i]-orig[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestParseval: energy is preserved up to the 1/n normalization.
func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	n := 64
	a := make([]complex128, n)
	var timeE float64
	for i := range a {
		a[i] = complex(rng.NormFloat64(), 0)
		timeE += real(a[i]) * real(a[i])
	}
	NewPlan(n).Forward(a)
	var freqE float64
	for _, v := range a {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqE/float64(n)-timeE) > 1e-9*timeE {
		t.Fatalf("Parseval: %v vs %v", freqE/float64(n), timeE)
	}
}

func Test2DRoundTripAndSeparability(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	n := 16
	a := make([]complex128, n*n)
	for i := range a {
		a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	orig := append([]complex128(nil), a...)
	Forward2D(a, n)
	Inverse2D(a, n)
	for i := range a {
		if cmplx.Abs(a[i]-orig[i]) > 1e-10 {
			t.Fatalf("2D round trip failed at %d", i)
		}
	}
}

// TestSingleModeSpectrum: a pure complex exponential lands in exactly one bin.
func TestSingleModeSpectrum(t *testing.T) {
	n := 32
	k := 5
	a := make([]complex128, n)
	for j := range a {
		ang := 2 * math.Pi * float64(k*j) / float64(n)
		a[j] = cmplx.Exp(complex(0, ang))
	}
	NewPlan(n).Forward(a)
	for b := range a {
		want := 0.0
		if b == k {
			want = float64(n)
		}
		if cmplx.Abs(a[b]-complex(want, 0)) > 1e-9 {
			t.Fatalf("bin %d = %v, want %v", b, a[b], want)
		}
	}
}

func TestFreqIndex(t *testing.T) {
	cases := []struct{ bin, n, want int }{
		{0, 8, 0}, {1, 8, 1}, {4, 8, 4}, {5, 8, -3}, {7, 8, -1},
	}
	for _, c := range cases {
		if got := FreqIndex(c.bin, c.n); got != c.want {
			t.Errorf("FreqIndex(%d,%d) = %d, want %d", c.bin, c.n, got, c.want)
		}
	}
}
