package nn

import (
	"math/rand"

	"repro/internal/ad"
	"repro/internal/dual"
	"repro/internal/qsim"

	// Link the multi-process shard executor: importing it registers the
	// EngineDist transport with qsim, so every binary that builds quantum
	// models can select -engine dist (and can self-exec as a worker).
	_ "repro/internal/dist"
)

// Quantum is the PQC layer of the QPINN (§2.3): it scales the incoming
// tanh-bounded activations into embedding angles using one of the five
// encodings of eq. 29, runs the parametrized quantum circuit through the
// adjoint-differentiated batched simulator, and exposes the per-qubit
// Pauli-Z expectations (and their input tangents) as tape values. Each
// qubit acts as one neuron of the following layer. The circuit-execution
// strategy is pluggable (qsim.Engine); training defaults to the fused
// compiled engine.
type Quantum struct {
	Circ    *qsim.Circuit
	Scaling qsim.ScalingKind
	Theta   *Param

	pqc  qsim.PQC
	free map[int][]*qsim.Workspace
}

// NewQuantum builds the layer with the given ansatz parameters initialized
// by strategy (InitRegular draws from rng) and circuits executed by the
// given engine (qsim.EngineFused unless a comparator is being measured).
func NewQuantum(r *Registry, rng *rand.Rand, circ *qsim.Circuit, scaling qsim.ScalingKind, init qsim.InitStrategy, engine qsim.EngineKind) *Quantum {
	q := &Quantum{Circ: circ, Scaling: scaling, free: make(map[int][]*qsim.Workspace)}
	q.pqc = qsim.PQC{Circ: circ, Eng: engine}
	q.Theta = r.New("quantum.theta", 1, circ.NumParams, func(w []float64) {
		init.Fill(w, rng.Float64)
	})
	return q
}

// scale applies the input-angle encoding as differentiable dual ops.
func (q *Quantum) scale(tp *ad.Tape, a dual.D) dual.D {
	switch q.Scaling {
	case qsim.ScaleNone:
		return a
	case qsim.ScalePi:
		return dual.Scale(tp, a, 3.141592653589793)
	case qsim.ScaleBias:
		return dual.Scale(tp, dual.Shift(tp, a, 1), 3.141592653589793/2)
	case qsim.ScaleAsin:
		return dual.Shift(tp, dual.Asin(tp, a), 3.141592653589793/2)
	case qsim.ScaleAcos:
		return dual.Acos(tp, a)
	}
	panic("nn: unknown scaling")
}

// checkout obtains a workspace for batch size n, reusing returned ones.
func (q *Quantum) checkout(n int) *qsim.Workspace {
	list := q.free[n]
	if len(list) > 0 {
		ws := list[len(list)-1]
		q.free[n] = list[:len(list)-1]
		return ws
	}
	return qsim.NewWorkspace(n, q.Circ.NumQubits)
}

func (q *Quantum) release(n int, ws *qsim.Workspace) {
	q.free[n] = append(q.free[n], ws)
}

// Forward runs the quantum layer. x must have NumQubits columns.
func (q *Quantum) Forward(tp *ad.Tape, x dual.D) dual.D {
	angles := q.scale(tp, x)
	n := angles.V.Rows()
	nq := q.Circ.NumQubits

	tans := make([][]float64, qsim.MaxTangents)
	for k := 0; k < qsim.MaxTangents; k++ {
		if angles.T[k].Valid() {
			tans[k] = angles.T[k].Data()
		}
	}

	ws := q.checkout(n)
	z, ztans := q.pqc.Forward(ws, angles.V.Data(), tans, q.Theta.W)

	needsGrad := angles.V.NeedsGrad() || q.Theta.Leaf().NeedsGrad()
	if !needsGrad {
		// Pure inference: publish outputs as constants and recycle now.
		q.release(n, ws)
		out := dual.FromValue(tp.Const(n, nq, z))
		for k := 0; k < qsim.MaxTangents; k++ {
			if ztans[k] != nil {
				out.T[k] = tp.Const(n, nq, ztans[k])
			}
		}
		return out
	}

	// The workspace is normally recycled by the backward closure, but a tape
	// that is reset without Backward ever running (an abandoned step, an
	// inference probe on a trainable graph) would strand it — one fresh
	// workspace allocation per call, forever. Register a reset hook so
	// whichever of (backward, reset) happens first returns it to the free
	// list, and the other is a no-op.
	released := false
	releaseOnce := func() {
		if !released {
			released = true
			q.release(n, ws)
		}
	}
	tp.OnReset(releaseOnce)

	// Publish tangent outputs first, value output last: the reverse sweep
	// visits the value node *after* all tangent nodes, so its backward
	// closure sees fully accumulated upstream gradients for every channel
	// and can run the adjoint pass exactly once.
	var out dual.D
	tanVals := make([]ad.Value, qsim.MaxTangents)
	for k := 0; k < qsim.MaxTangents; k++ {
		if ztans[k] != nil {
			tanVals[k] = tp.Custom(n, nq, ztans[k], true, nil)
			out.T[k] = tanVals[k]
		}
	}
	angleGrad := angles.V.Grad()
	if angleGrad == nil {
		angleGrad = make([]float64, n*nq)
	}
	angleTanGrads := make([][]float64, qsim.MaxTangents)
	for k := 0; k < qsim.MaxTangents; k++ {
		if tans[k] == nil {
			continue
		}
		if g := angles.T[k].Grad(); g != nil {
			angleTanGrads[k] = g
		} else {
			angleTanGrads[k] = make([]float64, n*nq)
		}
	}
	thetaGrad := q.Theta.Leaf().Grad()
	if thetaGrad == nil {
		thetaGrad = make([]float64, q.Circ.NumParams)
	}

	out.V = tp.Custom(n, nq, z, true, func(gz []float64) {
		gztans := make([][]float64, qsim.MaxTangents)
		for k := 0; k < qsim.MaxTangents; k++ {
			if tanVals[k].Valid() {
				gztans[k] = tanVals[k].Grad()
			}
		}
		q.pqc.Backward(ws, gz, gztans, angleGrad, angleTanGrads, thetaGrad)
		releaseOnce()
	})
	return out
}

// ScaleOnly exposes the input-angle encoding without running the circuit
// (diagnostics: Fig. 12 distributions and entanglement probes).
func (q *Quantum) ScaleOnly(tp *ad.Tape, x dual.D) dual.D {
	return q.scale(tp, x)
}
