package nn

import (
	"math"
	"math/rand"

	"repro/internal/ad"
	"repro/internal/dual"
)

// Layer transforms a dual batch on the tape.
type Layer interface {
	Forward(tp *ad.Tape, x dual.D) dual.D
}

// Dense is an affine layer with optional tanh activation.
type Dense struct {
	W, B *Param
	Tanh bool
}

// NewDense creates a Glorot-initialized in×out dense layer.
func NewDense(r *Registry, rng *rand.Rand, name string, in, out int, tanh bool) *Dense {
	return &Dense{
		W:    r.New(name+".w", in, out, XavierInit(rng, in, out)),
		B:    r.New(name+".b", 1, out, ZeroInit),
		Tanh: tanh,
	}
}

// Forward applies y = act(x·W + b) with tangent propagation.
func (d *Dense) Forward(tp *ad.Tape, x dual.D) dual.D {
	y := dual.Linear(tp, x, d.W.Leaf(), d.B.Leaf())
	if d.Tanh {
		y = dual.Tanh(tp, y)
	}
	return y
}

// RFF is the random Fourier feature embedding of §2.2: a fixed Gaussian
// projection Ω (not trainable) followed by [cos, sin] feature maps,
// producing 2·Features outputs. It mitigates the spectral bias of plain
// MLP PINNs (Tancik et al.).
type RFF struct {
	Omega    []float64 // in×Features, row-major, fixed
	In       int
	Features int
}

// NewRFF draws Ω once from N(0, σ²).
func NewRFF(rng *rand.Rand, in, features int, sigma float64) *RFF {
	om := make([]float64, in*features)
	for i := range om {
		om[i] = rng.NormFloat64() * sigma
	}
	return &RFF{Omega: om, In: in, Features: features}
}

// Forward maps x ↦ [cos(xΩ), sin(xΩ)].
func (f *RFF) Forward(tp *ad.Tape, x dual.D) dual.D {
	z := dual.MatMulC(tp, x, f.Omega, f.Features)
	return dual.ConcatCols(tp, dual.Cos(tp, z), dual.Sin(tp, z))
}

// Periodic implements the input embedding of §2.2: x and y are mapped to
// sin/cos pairs at the domain's fundamental frequency (strict spatial
// periodicity, removing the boundary-loss term per Dong & Ni), while t is
// mapped to sin/cos with a *learned* period parameter (the simulated window
// is shorter than one period). Input is the raw (x, y, t) batch; output has
// 6 columns: [sin x̂, cos x̂, sin ŷ, cos ŷ, sin t̂, cos t̂].
type Periodic struct {
	Lx, Ly  float64
	TPeriod *Param // 1×1, learned period T: t̂ = 2πt/T
}

// NewPeriodic creates the embedding with the learned time period initialized
// to initT.
func NewPeriodic(r *Registry, lx, ly, initT float64) *Periodic {
	return &Periodic{Lx: lx, Ly: ly, TPeriod: r.New("periodic.T", 1, 1, ConstInit(initT))}
}

// Forward expects x with 3 columns (x, y, t).
func (p *Periodic) Forward(tp *ad.Tape, x dual.D) dual.D {
	xs := dual.Scale(tp, dual.Col(tp, x, 0), 2*math.Pi/p.Lx)
	ys := dual.Scale(tp, dual.Col(tp, x, 1), 2*math.Pi/p.Ly)
	// ω = 2π/T as a differentiable scalar.
	one := tp.ConstScalar(2 * math.Pi)
	omega := tp.Div(one, p.TPeriod.Leaf())
	ts := dual.ScaleVar(tp, dual.Col(tp, x, 2), omega)
	xf := dual.ConcatCols(tp, dual.Sin(tp, xs), dual.Cos(tp, xs))
	yf := dual.ConcatCols(tp, dual.Sin(tp, ys), dual.Cos(tp, ys))
	tf := dual.ConcatCols(tp, dual.Sin(tp, ts), dual.Cos(tp, ts))
	return dual.ConcatCols(tp, dual.ConcatCols(tp, xf, yf), tf)
}
