package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ad"
	"repro/internal/dual"
	"repro/internal/qsim"
)

// hybridForward builds a miniature QPINN slice: coords → periodic → dense →
// quantum → dense, returning a scalar loss that mixes output values and
// tangents (a PDE-residual stand-in).
func hybridForward(tp *ad.Tape, reg *Registry, layers []Layer, coords []float64, n int, trainable bool) ad.Value {
	reg.Bind(tp, trainable)
	x := dual.FromValue(tp.Leaf(n, 3, coords, false))
	for k := 0; k < 3; k++ {
		tan := make([]float64, n*3)
		for i := 0; i < n; i++ {
			tan[i*3+k] = 1
		}
		x.T[k] = tp.Const(n, 3, tan)
	}
	for _, l := range layers {
		x = l.Forward(tp, x)
	}
	f0 := dual.Col(tp, x, 0)
	f1 := dual.Col(tp, x, 1)
	res := tp.Add(tp.Sub(f0.T[2], f1.T[0]), tp.Mul(f0.V, f1.T[1]))
	return tp.Add(tp.MSE(res), tp.MSE(f0.V))
}

func buildHybrid(t *testing.T, scaling qsim.ScalingKind, engine qsim.EngineKind) (*Registry, []Layer, []float64, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	reg := &Registry{}
	circ := qsim.StronglyEntangling.Build(3, 2)
	layers := []Layer{
		NewPeriodic(reg, 2, 2, 4.0),
		NewDense(reg, rng, "h1", 6, 5, true),
		NewDense(reg, rng, "adapter", 5, 3, true),
		NewQuantum(reg, rng, circ, scaling, qsim.InitRegular, engine),
		NewDense(reg, rng, "out", 3, 2, false),
	}
	n := 4
	coords := make([]float64, n*3)
	for i := range coords {
		coords[i] = rng.Float64()*1.6 - 0.8
	}
	return reg, layers, coords, n
}

// TestHybridQuantumGradients is the end-to-end integration check: parameter
// gradients of a tangent-mixing loss through periodic embedding, dense
// layers and the quantum circuit layer must match finite differences.
func TestHybridQuantumGradients(t *testing.T) {
	for _, scaling := range []qsim.ScalingKind{qsim.ScaleNone, qsim.ScalePi, qsim.ScaleAsin, qsim.ScaleAcos, qsim.ScaleBias} {
		reg, layers, coords, n := buildHybrid(t, scaling, qsim.EngineFused)

		tp := ad.NewTape()
		loss := hybridForward(tp, reg, layers, coords, n, true)
		tp.Backward(loss)
		reg.PullGrads()

		grads := make([][]float64, len(reg.Params))
		for i, p := range reg.Params {
			grads[i] = append([]float64(nil), p.Grad...)
		}

		eval := func() float64 {
			tp2 := ad.NewTape()
			return hybridForward(tp2, reg, layers, coords, n, false).Scalar()
		}

		const h = 1e-6
		for pi, p := range reg.Params {
			for j := range p.W {
				orig := p.W[j]
				p.W[j] = orig + h
				fp := eval()
				p.W[j] = orig - h
				fm := eval()
				p.W[j] = orig
				num := (fp - fm) / (2 * h)
				got := grads[pi][j]
				if math.Abs(got-num) > 5e-4*(1+math.Abs(num)) {
					t.Errorf("%v param %s[%d]: grad %v vs fd %v", scaling, p.Name, j, got, num)
				}
			}
		}
	}
}

// TestQuantumLayerInferenceMatchesTraining: the no-grad path must produce
// identical outputs to the training path.
func TestQuantumLayerInferenceMatchesTraining(t *testing.T) {
	reg, layers, coords, n := buildHybrid(t, qsim.ScaleAsin, qsim.EngineFused)
	tp := ad.NewTape()
	lossTrain := hybridForward(tp, reg, layers, coords, n, true)
	tp2 := ad.NewTape()
	lossInfer := hybridForward(tp2, reg, layers, coords, n, false)
	if math.Abs(lossTrain.Scalar()-lossInfer.Scalar()) > 1e-12 {
		t.Fatalf("training loss %v ≠ inference loss %v", lossTrain.Scalar(), lossInfer.Scalar())
	}
}

// TestQuantumLayerEngineParity: the full hybrid network produces identical
// losses and parameter gradients under every circuit-execution engine.
func TestQuantumLayerEngineParity(t *testing.T) {
	type result struct {
		loss  float64
		grads [][]float64
	}
	run := func(engine qsim.EngineKind) result {
		reg, layers, coords, n := buildHybrid(t, qsim.ScaleAcos, engine)
		tp := ad.NewTape()
		loss := hybridForward(tp, reg, layers, coords, n, true)
		tp.Backward(loss)
		reg.PullGrads()
		var grads [][]float64
		for _, p := range reg.Params {
			grads = append(grads, append([]float64(nil), p.Grad...))
		}
		return result{loss.Scalar(), grads}
	}
	ref := run(qsim.EngineLegacy)
	for _, engine := range []qsim.EngineKind{qsim.EngineFused, qsim.EngineNaive} {
		got := run(engine)
		if math.Abs(got.loss-ref.loss) > 1e-10 {
			t.Errorf("engine %v: loss %v ≠ legacy %v", engine, got.loss, ref.loss)
		}
		for pi := range ref.grads {
			for j := range ref.grads[pi] {
				if math.Abs(got.grads[pi][j]-ref.grads[pi][j]) > 1e-10 {
					t.Errorf("engine %v: grad[%d][%d] %v ≠ legacy %v",
						engine, pi, j, got.grads[pi][j], ref.grads[pi][j])
				}
			}
		}
	}
}

// TestPeriodicEmbeddingIsPeriodic: f(x) = f(x + Lx) and f(y) = f(y + Ly)
// exactly — the property that removes the boundary-loss term (§2.2).
func TestPeriodicEmbeddingIsPeriodic(t *testing.T) {
	reg := &Registry{}
	p := NewPeriodic(reg, 2, 2, 4.0)
	tp := ad.NewTape()
	reg.Bind(tp, false)
	coords := []float64{0.3, -0.7, 0.5}
	shifted := []float64{0.3 + 2, -0.7 - 2, 0.5}
	a := p.Forward(tp, dual.FromValue(tp.Leaf(1, 3, coords, false)))
	b := p.Forward(tp, dual.FromValue(tp.Leaf(1, 3, shifted, false)))
	for i := range a.V.Data() {
		if math.Abs(a.V.Data()[i]-b.V.Data()[i]) > 1e-12 {
			t.Fatalf("periodicity violated at feature %d: %v vs %v", i, a.V.Data()[i], b.V.Data()[i])
		}
	}
}

// TestPeriodicTimeUsesLearnedPeriod: changing the period parameter changes
// the time features but not the spatial ones.
func TestPeriodicTimeUsesLearnedPeriod(t *testing.T) {
	reg := &Registry{}
	p := NewPeriodic(reg, 2, 2, 4.0)
	coords := []float64{0.3, -0.7, 0.5}
	featAt := func() []float64 {
		tp := ad.NewTape()
		reg.Bind(tp, false)
		out := p.Forward(tp, dual.FromValue(tp.Leaf(1, 3, coords, false)))
		return append([]float64(nil), out.V.Data()...)
	}
	f1 := featAt()
	p.TPeriod.W[0] = 8.0
	f2 := featAt()
	for i := 0; i < 4; i++ {
		if math.Float64bits(f1[i]) != math.Float64bits(f2[i]) {
			t.Fatalf("spatial feature %d changed with time period", i)
		}
	}
	if math.Float64bits(f1[4]) == math.Float64bits(f2[4]) && math.Float64bits(f1[5]) == math.Float64bits(f2[5]) {
		t.Fatal("time features ignored the learned period")
	}
}

// TestRFFShapesAndDeterminism: 2·features outputs, fixed across calls.
func TestRFFShapesAndDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := NewRFF(rng, 6, 8, 1.0)
	tp := ad.NewTape()
	x := dual.FromValue(tp.Leaf(2, 6, make([]float64, 12), false))
	out := f.Forward(tp, x)
	if out.V.Cols() != 16 {
		t.Fatalf("RFF output cols = %d, want 16", out.V.Cols())
	}
	// cos(0) = 1, sin(0) = 0 for zero input.
	d := out.V.Data()
	for j := 0; j < 8; j++ {
		if math.Abs(d[j]-1) > 1e-15 || math.Abs(d[8+j]) > 1e-15 {
			t.Fatalf("RFF at zero input: cos=%v sin=%v", d[j], d[8+j])
		}
	}
}

// TestRegistryCount: parameter accounting used by the Table 1 checks.
func TestRegistryCount(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	reg := &Registry{}
	NewDense(reg, rng, "a", 4, 3, true)
	NewDense(reg, rng, "b", 3, 2, false)
	if got := reg.Count(); got != 4*3+3+3*2+2 {
		t.Fatalf("Count = %d", got)
	}
}

// TestTrigControlLayer: the §6.2(b) control must (a) carry no parameters,
// (b) produce cos(scale(a)) exactly, and (c) propagate exact tangents.
func TestTrigControlLayer(t *testing.T) {
	layer := NewTrig(qsim.ScaleAcos)
	tp := ad.NewTape()
	n := 5
	vals := []float64{-0.8, -0.3, 0, 0.4, 0.9}
	x := dual.FromValue(tp.Leaf(n, 1, vals, false))
	tanData := []float64{1, 1, 1, 1, 1}
	x.T[0] = tp.Const(n, 1, tanData)
	out := layer.Forward(tp, x)
	// cos(acos(a)) = a — identity transfer, the same anchor as the PQC test.
	for i, a := range vals {
		if math.Abs(out.V.Data()[i]-a) > 1e-12 {
			t.Fatalf("trig acos transfer at %d: %v want %v", i, out.V.Data()[i], a)
		}
	}
	// d/da cos(acos(a)) = 1.
	for i, g := range out.T[0].Data() {
		if math.Abs(g-1) > 1e-9 {
			t.Fatalf("trig tangent at %d: %v want 1", i, g)
		}
	}
}

// TestQuantumWorkspaceRecycledWithoutBackward guards the free-list leak: on
// the needsGrad path the workspace used to be released only inside the
// backward closure, so every tape reset without a Backward call stranded one
// workspace and forced a fresh allocation on the next forward. With the
// reset hook, repeated grad-bound forwards that never run Backward must keep
// recycling a single workspace.
func TestQuantumWorkspaceRecycledWithoutBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	reg := &Registry{}
	circ := qsim.StronglyEntangling.Build(3, 2)
	q := NewQuantum(reg, rng, circ, qsim.ScaleNone, qsim.InitRegular, qsim.EngineFused)

	n := 4
	coords := make([]float64, n*3)
	for i := range coords {
		coords[i] = rng.Float64()*2 - 1
	}
	tp := ad.NewTape()
	const iters = 20
	for iter := 0; iter < iters; iter++ {
		tp.Reset()
		reg.Bind(tp, true)
		x := dual.FromValue(tp.Leaf(n, 3, coords, true))
		out := q.Forward(tp, x)
		if !out.V.NeedsGrad() {
			t.Fatal("forward did not take the needsGrad path")
		}
		// No Backward: the tape is abandoned and reset on the next iteration.
	}
	tp.Reset()
	if got := len(q.free[n]); got != 1 {
		t.Fatalf("free list holds %d workspaces after %d backward-less forwards, want 1 (recycled)", got, iters)
	}

	// The normal path still releases exactly once: a forward+backward cycle
	// must not double-release the workspace the reset hook already knows.
	tp.Reset()
	reg.Bind(tp, true)
	x := dual.FromValue(tp.Leaf(n, 3, coords, true))
	out := q.Forward(tp, x)
	tp.Backward(tp.SumAll(out.V))
	tp.Reset()
	if got := len(q.free[n]); got != 1 {
		t.Fatalf("free list holds %d workspaces after forward+backward+reset, want 1", got)
	}
}
