// Package nn assembles the network layers of the paper's architectures:
// dense tanh layers, the random-Fourier-feature embedding, the strict
// periodic space / learned-period time embedding, and the quantum circuit
// layer that wraps the adjoint PQC runner as a differentiable tape
// operation. Layers operate on dual values so PDE input derivatives
// propagate through every stage, including the quantum circuit.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ad"
)

// Param is one trainable buffer. Grad is populated by binding the parameter
// to a tape each step (Bind) and reading back after Backward (PullGrad).
type Param struct {
	Name       string
	Rows, Cols int
	W          []float64
	Grad       []float64
	leaf       ad.Value
}

// Registry owns all parameters of a model.
type Registry struct {
	Params []*Param
}

// New allocates a parameter. init fills the buffer.
func (r *Registry) New(name string, rows, cols int, init func(w []float64)) *Param {
	p := &Param{Name: name, Rows: rows, Cols: cols, W: make([]float64, rows*cols), Grad: make([]float64, rows*cols)}
	if init != nil {
		init(p.W)
	}
	r.Params = append(r.Params, p)
	return p
}

// Count returns the total number of scalar parameters.
func (r *Registry) Count() int {
	var n int
	for _, p := range r.Params {
		n += len(p.W)
	}
	return n
}

// Bind registers every parameter as a leaf on the tape for this step.
// trainable=false binds without gradient tracking (pure inference).
func (r *Registry) Bind(tp *ad.Tape, trainable bool) {
	for _, p := range r.Params {
		p.leaf = tp.Leaf(p.Rows, p.Cols, p.W, trainable)
	}
}

// PullGrads copies tape gradients back into each parameter's Grad buffer
// after Backward. Must follow a trainable Bind.
func (r *Registry) PullGrads() {
	for _, p := range r.Params {
		g := p.leaf.Grad()
		if g == nil {
			panic(fmt.Sprintf("nn: PullGrads on non-trainable bind (%s)", p.Name))
		}
		copy(p.Grad, g)
	}
}

// Buffers returns the parameter buffers in registry order (optimizer input).
func (r *Registry) Buffers() [][]float64 {
	out := make([][]float64, len(r.Params))
	for i, p := range r.Params {
		out[i] = p.W
	}
	return out
}

// Grads returns the gradient buffer for parameter i (optimizer accessor).
func (r *Registry) Grads(i int) []float64 { return r.Params[i].Grad }

// Leaf returns the parameter's current tape handle (valid after Bind).
func (p *Param) Leaf() ad.Value { return p.leaf }

// GradNormAndVar returns the L2 norm and the scalar variance of the full
// concatenated gradient vector — the quantities tracked in the paper's
// Fig. 10c–d to localize the black-hole collapse.
func (r *Registry) GradNormAndVar() (norm, variance float64) {
	var sum, sumSq float64
	var n int
	for _, p := range r.Params {
		for _, g := range p.Grad {
			sum += g
			sumSq += g * g
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	mean := sum / float64(n)
	return math.Sqrt(sumSq), sumSq/float64(n) - mean*mean
}

// XavierInit returns a Glorot-uniform initializer for a rows×cols matrix.
func XavierInit(rng *rand.Rand, rows, cols int) func([]float64) {
	bound := math.Sqrt(6.0 / float64(rows+cols))
	return func(w []float64) {
		for i := range w {
			w[i] = (rng.Float64()*2 - 1) * bound
		}
	}
}

// ZeroInit leaves the buffer at zero (biases).
func ZeroInit(w []float64) {}

// ConstInit fills the buffer with c.
func ConstInit(c float64) func([]float64) {
	return func(w []float64) {
		for i := range w {
			w[i] = c
		}
	}
}
