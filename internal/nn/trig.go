package nn

import (
	"repro/internal/ad"
	"repro/internal/dual"
	"repro/internal/qsim"
)

// Trig is the classical control the paper proposes in §6.2 (follow-up b):
// a layer that replaces the PQC with an equal-size *fixed* trigonometric
// basis — each activation is scaled exactly like a quantum embedding angle
// and read out as cos(θ), which is the single-qubit ⟨Z⟩ = cos(RX-angle)
// transfer with no trainable circuit behind it. Comparing this control
// against the QPINN isolates how much of the quantum layer's benefit is
// "just periodic features" versus the trainable entangling circuit.
type Trig struct {
	Scaling qsim.ScalingKind
	q       Quantum // reused only for the scaling implementation
}

// NewTrig creates the control layer (no trainable parameters).
func NewTrig(scaling qsim.ScalingKind) *Trig {
	return &Trig{Scaling: scaling, q: Quantum{Scaling: scaling}}
}

// Forward maps activations a ↦ cos(scale(a)) with full tangent propagation.
func (t *Trig) Forward(tp *ad.Tape, x dual.D) dual.D {
	return dual.Cos(tp, t.q.scale(tp, x))
}
