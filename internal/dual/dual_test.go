package dual

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ad"
)

// buildNet is a tiny smooth network f: R³ → R² exercising every dual op used
// on the PINN forward path: periodic features, a fixed projection, tanh
// layers, column select/concat, and a learned scalar.
func buildNet(tp *ad.Tape, coords []float64, n int, w1, b1, w2, b2, sParam []float64, omega []float64, withTangents bool) D {
	x := FromValue(tp.Leaf(n, 3, coords, false))
	if withTangents {
		for k := 0; k < 3; k++ {
			tan := make([]float64, n*3)
			for i := 0; i < n; i++ {
				tan[i*3+k] = 1
			}
			x.T[k] = tp.Const(n, 3, tan)
		}
	}
	s := tp.Leaf(1, 1, sParam, true)
	// Periodic-style features with a learned frequency on the last column.
	xc := Col(tp, x, 0)
	yc := Col(tp, x, 1)
	tc := ScaleVar(tp, Col(tp, x, 2), s)
	feats := ConcatCols(tp, ConcatCols(tp, Sin(tp, xc), Cos(tp, yc)), Sin(tp, tc))
	proj := MatMulC(tp, feats, omega, 4)
	w1v := tp.Leaf(4, 5, w1, true)
	b1v := tp.Leaf(1, 5, b1, true)
	h := Tanh(tp, Linear(tp, proj, w1v, b1v))
	w2v := tp.Leaf(5, 2, w2, true)
	b2v := tp.Leaf(1, 2, b2, true)
	return Linear(tp, h, w2v, b2v)
}

func TestTangentsMatchFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 6
	coords := make([]float64, n*3)
	for i := range coords {
		coords[i] = rng.Float64()*2 - 1
	}
	w1 := randn(rng, 3*4*5/3) // 4×5
	b1 := randn(rng, 5)
	w2 := randn(rng, 5*2)
	b2 := randn(rng, 2)
	sp := []float64{1.7}
	omega := randn(rng, 3*4)

	eval := func(c []float64) []float64 {
		tp := ad.NewTape()
		out := buildNet(tp, c, n, w1, b1, w2, b2, sp, omega, false)
		return append([]float64(nil), out.V.Data()...)
	}

	tp := ad.NewTape()
	out := buildNet(tp, coords, n, w1, b1, w2, b2, sp, omega, true)

	const h = 1e-6
	for k := 0; k < 3; k++ {
		tanData := out.T[k].Data()
		for i := 0; i < n; i++ {
			cp := append([]float64(nil), coords...)
			cp[i*3+k] += h
			fp := eval(cp)
			cp[i*3+k] -= 2 * h
			fm := eval(cp)
			for j := 0; j < 2; j++ {
				num := (fp[i*2+j] - fm[i*2+j]) / (2 * h)
				got := tanData[i*2+j]
				if math.Abs(got-num) > 1e-5*(1+math.Abs(num)) {
					t.Errorf("tangent[%d] sample %d out %d: %v vs fd %v", k, i, j, got, num)
				}
			}
		}
	}
}

// TestTangentLossParamGradients is the load-bearing check for PINN training:
// a loss built from *tangent* nodes (a PDE-residual stand-in) must have exact
// parameter gradients. This validates the forward-over-reverse composition.
func TestTangentLossParamGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 5
	coords := make([]float64, n*3)
	for i := range coords {
		coords[i] = rng.Float64()*2 - 1
	}
	w1 := randn(rng, 4*5)
	b1 := randn(rng, 5)
	w2 := randn(rng, 5*2)
	b2 := randn(rng, 2)
	sp := []float64{1.3}
	omega := randn(rng, 3*4)

	params := [][]float64{w1, b1, w2, b2, sp}

	// Build once with handles retained for gradient readout.
	tp := ad.NewTape()
	x := FromValue(tp.Leaf(n, 3, coords, false))
	for k := 0; k < 3; k++ {
		tan := make([]float64, n*3)
		for i := 0; i < n; i++ {
			tan[i*3+k] = 1
		}
		x.T[k] = tp.Const(n, 3, tan)
	}
	sV := tp.Leaf(1, 1, sp, true)
	xc := Col(tp, x, 0)
	yc := Col(tp, x, 1)
	tc := ScaleVar(tp, Col(tp, x, 2), sV)
	feats := ConcatCols(tp, ConcatCols(tp, Sin(tp, xc), Cos(tp, yc)), Sin(tp, tc))
	proj := MatMulC(tp, feats, omega, 4)
	w1V := tp.Leaf(4, 5, w1, true)
	b1V := tp.Leaf(1, 5, b1, true)
	hid := Tanh(tp, Linear(tp, proj, w1V, b1V))
	w2V := tp.Leaf(5, 2, w2, true)
	b2V := tp.Leaf(1, 2, b2, true)
	out := Linear(tp, hid, w2V, b2V)
	f0 := Col(tp, out, 0)
	f1 := Col(tp, out, 1)
	res := tp.Add(tp.Sub(f0.T[2], f1.T[0]), tp.Mul(f0.V, f1.T[1]))
	loss := tp.MSE(res)
	tp.Backward(loss)
	grads := [][]float64{w1V.Grad(), b1V.Grad(), w2V.Grad(), b2V.Grad(), sV.Grad()}

	evalLoss := func() float64 {
		tp2 := ad.NewTape()
		out2 := buildNet(tp2, coords, n, w1, b1, w2, b2, sp, omega, true)
		f0 := Col(tp2, out2, 0)
		f1 := Col(tp2, out2, 1)
		res := tp2.Add(tp2.Sub(f0.T[2], f1.T[0]), tp2.Mul(f0.V, f1.T[1]))
		return tp2.MSE(res).Scalar()
	}

	const h = 1e-6
	for pi, p := range params {
		for j := range p {
			orig := p[j]
			p[j] = orig + h
			fp := evalLoss()
			p[j] = orig - h
			fm := evalLoss()
			p[j] = orig
			num := (fp - fm) / (2 * h)
			got := grads[pi][j]
			if math.Abs(got-num) > 2e-4*(1+math.Abs(num)) {
				t.Errorf("param %d[%d]: grad %v vs fd %v", pi, j, got, num)
			}
		}
	}
}

func TestDualArithmeticIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 4
	tp := ad.NewTape()
	a := dualWithTangents(tp, rng, n)
	b := dualWithTangents(tp, rng, n)

	// (a+b) − b has the same value and tangents as a.
	c := Sub(tp, Add(tp, a, b), b)
	assertClose(t, "add/sub value", c.V.Data(), a.V.Data(), 1e-12)
	for k := 0; k < K; k++ {
		assertClose(t, "add/sub tangent", c.T[k].Data(), a.T[k].Data(), 1e-12)
	}

	// Product rule consistency: d(a²) = 2 a da.
	sq := Mul(tp, a, a)
	sq2 := Square(tp, a)
	assertClose(t, "square value", sq.V.Data(), sq2.V.Data(), 1e-12)
	for k := 0; k < K; k++ {
		assertClose(t, "square tangent", sq.T[k].Data(), sq2.T[k].Data(), 1e-12)
	}

	// sin² + cos² = 1 with zero tangent.
	s, c2 := Sin(tp, a), Cos(tp, a)
	one := Add(tp, Square(tp, s), Square(tp, c2))
	for _, v := range one.V.Data() {
		if math.Abs(v-1) > 1e-12 {
			t.Errorf("sin²+cos² = %v", v)
		}
	}
	for k := 0; k < K; k++ {
		for _, v := range one.T[k].Data() {
			if math.Abs(v) > 1e-12 {
				t.Errorf("d(sin²+cos²) = %v, want 0", v)
			}
		}
	}
}

func dualWithTangents(tp *ad.Tape, rng *rand.Rand, n int) D {
	d := FromValue(tp.Const(n, 1, randn(rng, n)))
	for k := 0; k < K; k++ {
		d.T[k] = tp.Const(n, 1, randn(rng, n))
	}
	return d
}

func randn(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64() * 0.5
	}
	return s
}

func assertClose(t *testing.T, name string, got, want []float64, tol float64) {
	t.Helper()
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol {
			t.Errorf("%s[%d]: %v vs %v", name, i, got[i], want[i])
			return
		}
	}
}
