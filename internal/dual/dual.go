// Package dual layers forward-mode tangent propagation on top of the
// reverse-mode tape in internal/ad. A D carries a value node and up to K
// tangent nodes — the directional derivatives of the value with respect to
// the network inputs (x, y, t for the Maxwell problems). Because tangents
// are ordinary tape nodes, the physics losses (which consume them as PDE
// derivatives) remain differentiable with respect to every network
// parameter: one reverse sweep yields exact ∂L/∂θ even when L contains
// ∂f/∂x terms. This forward-over-reverse scheme replaces PyTorch's nested
// autograd in the paper's pipeline.
package dual

import "repro/internal/ad"

// K is the number of tangent channels: ∂/∂x, ∂/∂y, ∂/∂t.
const K = 3

// D is a dual matrix: a value and K tangent channels. An invalid tangent
// handle (zero ad.Value) denotes a structurally-zero derivative, letting
// graph construction skip entire chains (e.g. parameters have no input
// tangents).
type D struct {
	V ad.Value
	T [K]ad.Value
}

// FromValue wraps a tape node with zero tangents.
func FromValue(v ad.Value) D { return D{V: v} }

// HasTangents reports whether any tangent channel is present.
func (d D) HasTangents() bool {
	for _, t := range d.T {
		if t.Valid() {
			return true
		}
	}
	return false
}

// Add returns a + b with tangents added channelwise.
func Add(tp *ad.Tape, a, b D) D {
	out := D{V: tp.Add(a.V, b.V)}
	for k := 0; k < K; k++ {
		switch {
		case a.T[k].Valid() && b.T[k].Valid():
			out.T[k] = tp.Add(a.T[k], b.T[k])
		case a.T[k].Valid():
			out.T[k] = a.T[k]
		case b.T[k].Valid():
			out.T[k] = b.T[k]
		}
	}
	return out
}

// Sub returns a − b with tangents subtracted channelwise.
func Sub(tp *ad.Tape, a, b D) D {
	out := D{V: tp.Sub(a.V, b.V)}
	for k := 0; k < K; k++ {
		switch {
		case a.T[k].Valid() && b.T[k].Valid():
			out.T[k] = tp.Sub(a.T[k], b.T[k])
		case a.T[k].Valid():
			out.T[k] = a.T[k]
		case b.T[k].Valid():
			out.T[k] = tp.Neg(b.T[k])
		}
	}
	return out
}

// Mul returns a ⊙ b with product-rule tangents.
func Mul(tp *ad.Tape, a, b D) D {
	out := D{V: tp.Mul(a.V, b.V)}
	for k := 0; k < K; k++ {
		var terms []ad.Value
		if a.T[k].Valid() {
			terms = append(terms, tp.Mul(a.T[k], b.V))
		}
		if b.T[k].Valid() {
			terms = append(terms, tp.Mul(a.V, b.T[k]))
		}
		switch len(terms) {
		case 1:
			out.T[k] = terms[0]
		case 2:
			out.T[k] = tp.Add(terms[0], terms[1])
		}
	}
	return out
}

// Scale returns a * c (constant) with tangents scaled.
func Scale(tp *ad.Tape, a D, c float64) D {
	out := D{V: tp.Scale(a.V, c)}
	for k := 0; k < K; k++ {
		if a.T[k].Valid() {
			out.T[k] = tp.Scale(a.T[k], c)
		}
	}
	return out
}

// Shift returns a + c (constant); tangents are unchanged.
func Shift(tp *ad.Tape, a D, c float64) D {
	out := D{V: tp.Shift(a.V, c)}
	out.T = a.T
	return out
}

// Neg returns −a.
func Neg(tp *ad.Tape, a D) D { return Scale(tp, a, -1) }

// unaryChain applies y = f(a) with tangents yₖ = f'(a) ⊙ aₖ, given the
// already-computed derivative node df.
func unaryChain(tp *ad.Tape, a D, v ad.Value, df func() ad.Value) D {
	out := D{V: v}
	if !a.HasTangents() {
		return out
	}
	d := df()
	for k := 0; k < K; k++ {
		if a.T[k].Valid() {
			out.T[k] = tp.Mul(d, a.T[k])
		}
	}
	return out
}

// Sin returns sin(a) with cos(a)-scaled tangents.
func Sin(tp *ad.Tape, a D) D {
	return unaryChain(tp, a, tp.Sin(a.V), func() ad.Value { return tp.Cos(a.V) })
}

// Cos returns cos(a) with −sin(a)-scaled tangents.
func Cos(tp *ad.Tape, a D) D {
	return unaryChain(tp, a, tp.Cos(a.V), func() ad.Value { return tp.Neg(tp.Sin(a.V)) })
}

// Tanh returns tanh(a) with (1−tanh²)-scaled tangents.
func Tanh(tp *ad.Tape, a D) D {
	v := tp.Tanh(a.V)
	return unaryChain(tp, a, v, func() ad.Value {
		return tp.Shift(tp.Neg(tp.Square(v)), 1)
	})
}

// Square returns a² with 2a-scaled tangents.
func Square(tp *ad.Tape, a D) D {
	return unaryChain(tp, a, tp.Square(a.V), func() ad.Value { return tp.Scale(a.V, 2) })
}

// Exp returns exp(a) with exp(a)-scaled tangents.
func Exp(tp *ad.Tape, a D) D {
	v := tp.Exp(a.V)
	return unaryChain(tp, a, v, func() ad.Value { return v })
}

// Asin returns arcsin(a); tangent factor 1/√(1−a²).
func Asin(tp *ad.Tape, a D) D {
	v := tp.Asin(a.V)
	return unaryChain(tp, a, v, func() ad.Value {
		den := tp.Sqrt(tp.Shift(tp.Neg(tp.Square(tp.Clamp(a.V, 1-1e-9))), 1))
		one := onesLike(tp, den)
		return tp.Div(one, den)
	})
}

// Acos returns arccos(a); tangent factor −1/√(1−a²).
func Acos(tp *ad.Tape, a D) D {
	v := tp.Acos(a.V)
	return unaryChain(tp, a, v, func() ad.Value {
		den := tp.Sqrt(tp.Shift(tp.Neg(tp.Square(tp.Clamp(a.V, 1-1e-9))), 1))
		one := onesLike(tp, den)
		return tp.Neg(tp.Div(one, den))
	})
}

func onesLike(tp *ad.Tape, v ad.Value) ad.Value {
	data := make([]float64, v.Rows()*v.Cols())
	for i := range data {
		data[i] = 1
	}
	return tp.Const(v.Rows(), v.Cols(), data)
}

// Linear applies the affine layer y = a·W + bias. W and bias carry no input
// tangents (they are parameters), so tangent channels propagate linearly:
// yₖ = aₖ·W.
func Linear(tp *ad.Tape, a D, w, bias ad.Value) D {
	out := D{V: tp.AddBias(tp.MatMul(a.V, w), bias)}
	for k := 0; k < K; k++ {
		if a.T[k].Valid() {
			out.T[k] = tp.MatMul(a.T[k], w)
		}
	}
	return out
}

// MatMulC applies a fixed linear map (e.g. the random Fourier projection Ω).
func MatMulC(tp *ad.Tape, a D, m []float64, mCols int) D {
	out := D{V: tp.MatMulC(a.V, m, mCols)}
	for k := 0; k < K; k++ {
		if a.T[k].Valid() {
			out.T[k] = tp.MatMulC(a.T[k], m, mCols)
		}
	}
	return out
}

// ScaleVar multiplies by a differentiable 1×1 scalar (learned 2π/T factor in
// the periodic time embedding). The scalar has no input tangents.
func ScaleVar(tp *ad.Tape, a D, s ad.Value) D {
	out := D{V: tp.ScaleVar(a.V, s)}
	for k := 0; k < K; k++ {
		if a.T[k].Valid() {
			out.T[k] = tp.ScaleVar(a.T[k], s)
		}
	}
	return out
}

// SelectCols gathers columns channelwise.
func SelectCols(tp *ad.Tape, a D, idx []int) D {
	out := D{V: tp.SelectCols(a.V, idx)}
	for k := 0; k < K; k++ {
		if a.T[k].Valid() {
			out.T[k] = tp.SelectCols(a.T[k], idx)
		}
	}
	return out
}

// Col extracts one column channelwise.
func Col(tp *ad.Tape, a D, j int) D { return SelectCols(tp, a, []int{j}) }

// SelectRows gathers rows channelwise.
func SelectRows(tp *ad.Tape, a D, idx []int) D {
	out := D{V: tp.SelectRows(a.V, idx)}
	for k := 0; k < K; k++ {
		if a.T[k].Valid() {
			out.T[k] = tp.SelectRows(a.T[k], idx)
		}
	}
	return out
}

// ConcatCols concatenates channelwise. A missing tangent on one side is
// materialized as zeros so column alignment holds.
func ConcatCols(tp *ad.Tape, a, b D) D {
	out := D{V: tp.ConcatCols(a.V, b.V)}
	for k := 0; k < K; k++ {
		at, bt := a.T[k], b.T[k]
		if !at.Valid() && !bt.Valid() {
			continue
		}
		if !at.Valid() {
			at = zerosLike(tp, a.V)
		}
		if !bt.Valid() {
			bt = zerosLike(tp, b.V)
		}
		out.T[k] = tp.ConcatCols(at, bt)
	}
	return out
}

func zerosLike(tp *ad.Tape, v ad.Value) ad.Value {
	return tp.Const(v.Rows(), v.Cols(), make([]float64, v.Rows()*v.Cols()))
}
